package dft

import (
	"math"
	"math/rand"
	"testing"

	"hydra/internal/series"
)

func randSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func TestFFTMatchesDirectDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{2, 4, 8, 64, 256} {
		s := randSeries(rng, n)
		re, im := transform(s)
		// Direct O(n^2) evaluation for reference.
		for k := 0; k < n; k++ {
			var sr, si float64
			for tt := 0; tt < n; tt++ {
				ang := -2 * math.Pi * float64(k) * float64(tt) / float64(n)
				sr += float64(s[tt]) * math.Cos(ang)
				si += float64(s[tt]) * math.Sin(ang)
			}
			if math.Abs(re[k]-sr) > 1e-6*(1+math.Abs(sr)) || math.Abs(im[k]-si) > 1e-6*(1+math.Abs(si)) {
				t.Fatalf("n=%d bin %d: fft (%v,%v) vs direct (%v,%v)", n, k, re[k], im[k], sr, si)
			}
		}
	}
}

func TestCoefficientsParsevalFull(t *testing.T) {
	// With l = n the packed coefficients preserve the full energy, so the
	// lower bound equals the true distance.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{8, 16, 64, 100, 37} {
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		ca := Coefficients(a, n)
		cb := Coefficients(b, n)
		lb := LowerBoundDist(ca, cb)
		d := series.Dist(a, b)
		if math.Abs(lb-d) > 1e-4*(1+d) {
			t.Errorf("n=%d: full-resolution DFT distance %v != true distance %v", n, lb, d)
		}
	}
}

func TestCoefficientsEnergyPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{16, 64, 50} {
		s := randSeries(rng, n)
		var norm float64
		for _, v := range s {
			norm += float64(v) * float64(v)
		}
		full := Energy(Coefficients(s, n))
		if math.Abs(full-norm) > 1e-4*(1+norm) {
			t.Errorf("n=%d: packed energy %v != series energy %v", n, full, norm)
		}
	}
}

func TestLowerBoundProperty(t *testing.T) {
	// Truncated coefficients must lower-bound the true distance.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 8 + rng.Intn(250)
		l := 1 + rng.Intn(min(16, n))
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		lb := LowerBoundDist(Coefficients(a, l), Coefficients(b, l))
		d := series.Dist(a, b)
		if lb > d+1e-6 {
			t.Fatalf("trial %d (n=%d l=%d): DFT bound %v exceeds %v", trial, n, l, lb, d)
		}
	}
}

func TestLowerBoundMonotoneInL(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	a := randSeries(rng, 128)
	b := randSeries(rng, 128)
	prev := 0.0
	for _, l := range []int{2, 4, 8, 16, 32, 64, 128} {
		lb := LowerBoundDist(Coefficients(a, l), Coefficients(b, l))
		if lb+1e-9 < prev {
			t.Fatalf("lower bound decreased at l=%d: %v < %v", l, lb, prev)
		}
		prev = lb
	}
}

func TestSmoothSeriesEnergyCompaction(t *testing.T) {
	// For a low-frequency signal, the first few coefficients must capture
	// almost all energy — the reason DFT summarisation works.
	n := 128
	s := make(series.Series, n)
	for i := range s {
		s[i] = float32(math.Sin(2*math.Pi*3*float64(i)/float64(n)) + 0.5*math.Cos(2*math.Pi*2*float64(i)/float64(n)))
	}
	var norm float64
	for _, v := range s {
		norm += float64(v) * float64(v)
	}
	captured := Energy(Coefficients(s, 9)) // DC + 4 complex pairs
	if captured < 0.99*norm {
		t.Errorf("9 coefficients capture %v of %v energy", captured, norm)
	}
}

func TestCoefficientsDCValue(t *testing.T) {
	s := series.Series{2, 2, 2, 2}
	c := Coefficients(s, 1)
	// DC term = sum/sqrt(n) = 8/2 = 4.
	if math.Abs(c[0]-4) > 1e-9 {
		t.Errorf("DC coefficient = %v, want 4", c[0])
	}
}

func TestCoefficientsInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Coefficients(series.Series{1, 2}, 3)
}

func TestLowerBoundMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	LowerBoundDist([]float64{1}, []float64{1, 2})
}

func BenchmarkFFT256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := randSeries(rng, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Coefficients(s, 16)
	}
}
