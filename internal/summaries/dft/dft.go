// Package dft implements the Discrete Fourier Transform front-end used by
// the (modified) VA+file: the paper replaced the original KLT decorrelation
// step with DFT for efficiency, keeping the first few Fourier coefficients
// as the reduced representation.
//
// The transform here is an iterative in-place radix-2 FFT; series whose
// length is not a power of two are handled by plain O(n·l) projection onto
// the first l Fourier basis vectors (the benchmark only needs a few
// coefficients, so this stays cheap and exact).
//
// With the orthonormal scaling used here, the DFT is an isometry (Parseval):
// the Euclidean distance between two coefficient vectors truncated to l
// coefficients lower-bounds the distance between the original series.
package dft

import (
	"fmt"
	"math"
	"math/bits"

	"hydra/internal/series"
)

// Coefficients returns the first l real-packed orthonormal DFT coefficients
// of s. Packing: [Re(X0), Re(X1), Im(X1), Re(X2), Im(X2), ...] — the real
// DC term first, then real/imaginary pairs, truncated to exactly l values.
// Each retained value is scaled so the full packed vector has the same
// Euclidean norm as s (unitary DFT with the conjugate-symmetry doubling for
// k in (0, n/2)).
func Coefficients(s series.Series, l int) []float64 {
	n := len(s)
	if l <= 0 || l > n {
		panic(fmt.Sprintf("dft: coefficient count %d out of range [1,%d]", l, n))
	}
	re, im := transform(s)
	return pack(re, im, n, l)
}

// transform computes the (unnormalised) DFT of s, returning real and
// imaginary parts. Power-of-two lengths use the FFT; others use direct
// evaluation of the needed prefix. Direct evaluation computes all bins for
// API simplicity (n is small in this benchmark).
func transform(s series.Series) (re, im []float64) {
	n := len(s)
	re = make([]float64, n)
	im = make([]float64, n)
	if n&(n-1) == 0 && n > 1 {
		for i, v := range s {
			re[i] = float64(v)
		}
		fft(re, im)
		return re, im
	}
	for k := 0; k < n; k++ {
		var sr, si float64
		w := -2 * math.Pi * float64(k) / float64(n)
		for t := 0; t < n; t++ {
			ang := w * float64(t)
			v := float64(s[t])
			sr += v * math.Cos(ang)
			si += v * math.Sin(ang)
		}
		re[k] = sr
		im[k] = si
	}
	return re, im
}

// fft performs an in-place iterative radix-2 Cooley–Tukey FFT over the
// complex values (re, im). len(re) must be a power of two.
func fft(re, im []float64) {
	n := len(re)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := -2 * math.Pi / float64(size)
		wr := math.Cos(ang)
		wi := math.Sin(ang)
		for start := 0; start < n; start += size {
			cr, ci := 1.0, 0.0
			for k := 0; k < half; k++ {
				i := start + k
				j := i + half
				tr := cr*re[j] - ci*im[j]
				ti := cr*im[j] + ci*re[j]
				re[j] = re[i] - tr
				im[j] = im[i] - ti
				re[i] += tr
				im[i] += ti
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}

// pack converts raw DFT bins into the real-packed orthonormal layout.
func pack(re, im []float64, n, l int) []float64 {
	out := make([]float64, 0, l)
	inv := 1 / math.Sqrt(float64(n))
	// DC term: appears once, weight 1/sqrt(n).
	out = append(out, re[0]*inv)
	scale := math.Sqrt(2.0 / float64(n))
	for k := 1; len(out) < l; k++ {
		if 2*k == n {
			// Nyquist bin (even n): purely real, weight 1/sqrt(n).
			out = append(out, re[k]*inv)
			break
		}
		if k >= n {
			break
		}
		out = append(out, re[k]*scale)
		if len(out) < l {
			out = append(out, im[k]*scale)
		}
	}
	// Pad in the degenerate case where n has fewer packed values than l
	// (cannot happen for l <= n, but keep the invariant explicit).
	for len(out) < l {
		out = append(out, 0)
	}
	return out[:l]
}

// LowerBoundDist returns the Euclidean distance between two packed
// coefficient vectors. By Parseval's theorem this lower-bounds the distance
// between the original series when both vectors were produced by
// Coefficients with the same l.
func LowerBoundDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dft: coefficient length mismatch %d vs %d", len(a), len(b)))
	}
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}

// Energy returns the squared norm of a packed coefficient vector, i.e. the
// fraction of the series energy captured by the retained coefficients.
func Energy(coeffs []float64) float64 {
	var acc float64
	for _, c := range coeffs {
		acc += c * c
	}
	return acc
}
