// Package sax implements the Symbolic Aggregate Approximation (SAX) and its
// indexable multi-cardinality variant iSAX.
//
// SAX transforms a series into l PAA values and quantises each into one of
// a discrete symbols using breakpoints that divide the standard normal
// distribution into equiprobable regions (SAX assumes z-normalised data).
// iSAX represents each symbol with a per-segment cardinality, allowing
// comparisons between words of different resolutions — the property that
// makes SAX indexable with a binary prefix tree (iSAX 2.0 / iSAX2+).
package sax

import (
	"fmt"
	"math"
	"sort"

	"hydra/internal/series"
	"hydra/internal/summaries/paa"
)

// MaxBits is the maximum per-segment cardinality exponent supported
// (cardinality 2^MaxBits = 256, the paper's usual maximum).
const MaxBits = 8

// breakpoints[b] holds the 2^b - 1 breakpoints splitting N(0,1) into 2^b
// equiprobable regions, for b in [1, MaxBits].
var breakpoints [MaxBits + 1][]float64

func init() {
	for b := 1; b <= MaxBits; b++ {
		card := 1 << b
		bp := make([]float64, card-1)
		for i := 1; i < card; i++ {
			bp[i-1] = normInvCDF(float64(i) / float64(card))
		}
		breakpoints[b] = bp
	}
}

// normInvCDF computes the inverse CDF of the standard normal distribution
// using the Acklam rational approximation (|relative error| < 1.15e-9),
// refined with one Halley step of the complementary error function.
func normInvCDF(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("sax: invalid probability %v", p))
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step against the exact CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Breakpoints returns the sorted breakpoints for cardinality 2^bits.
// The returned slice must not be modified.
func Breakpoints(bits int) []float64 {
	if bits < 1 || bits > MaxBits {
		panic(fmt.Sprintf("sax: bits %d out of range [1,%d]", bits, MaxBits))
	}
	return breakpoints[bits]
}

// Symbol quantises a single PAA value at the given cardinality exponent.
// Symbols are ordered: 0 for the lowest region, 2^bits-1 for the highest.
func Symbol(v float64, bits int) uint16 {
	bp := Breakpoints(bits)
	// sort.SearchFloat64s returns the count of breakpoints <= v which is
	// exactly the region index.
	return uint16(sort.SearchFloat64s(bp, v))
}

// Word is an iSAX word: per-segment symbols with per-segment cardinality
// exponents. A Word with all Bits equal to b is a plain SAX word of
// cardinality 2^b.
type Word struct {
	Symbols []uint16 // region index at cardinality 2^Bits[i]
	Bits    []uint8  // cardinality exponent per segment, in [1, MaxBits]
}

// FromSeries computes the iSAX word of s with l segments, all at
// cardinality 2^bits. The series should be z-normalised.
func FromSeries(s series.Series, l, bits int) Word {
	return FromPAA(paa.Transform(s, l), bits)
}

// FromPAA quantises an existing PAA vector at uniform cardinality 2^bits.
func FromPAA(p []float64, bits int) Word {
	w := Word{Symbols: make([]uint16, len(p)), Bits: make([]uint8, len(p))}
	for i, v := range p {
		w.Symbols[i] = Symbol(v, bits)
		w.Bits[i] = uint8(bits)
	}
	return w
}

// Clone deep-copies the word.
func (w Word) Clone() Word {
	out := Word{Symbols: make([]uint16, len(w.Symbols)), Bits: make([]uint8, len(w.Bits))}
	copy(out.Symbols, w.Symbols)
	copy(out.Bits, w.Bits)
	return out
}

// Promote returns the symbol of segment i reduced to the coarser
// cardinality exponent toBits (toBits <= w.Bits[i]); it drops the low-order
// bits, which is the iSAX cardinality-comparison rule.
func (w Word) Promote(i int, toBits uint8) uint16 {
	if toBits > w.Bits[i] {
		panic(fmt.Sprintf("sax: cannot promote segment %d from %d to finer %d bits", i, w.Bits[i], toBits))
	}
	return w.Symbols[i] >> (w.Bits[i] - toBits)
}

// Contains reports whether the region denoted by prefix word p (typically
// an index node) contains the full-resolution word w: every segment of w,
// coarsened to p's cardinality, must equal p's symbol.
func (p Word) Contains(w Word) bool {
	for i := range p.Symbols {
		if w.Promote(i, p.Bits[i]) != p.Symbols[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for the word (used for node maps and
// debugging), e.g. "3@2|1@1" = symbol 3 at 2 bits, symbol 1 at 1 bit.
func (w Word) Key() string {
	buf := make([]byte, 0, len(w.Symbols)*5)
	for i := range w.Symbols {
		if i > 0 {
			buf = append(buf, '|')
		}
		buf = appendUint(buf, uint64(w.Symbols[i]))
		buf = append(buf, '@')
		buf = appendUint(buf, uint64(w.Bits[i]))
	}
	return string(buf)
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// regionBounds returns the [lo, hi] value range of symbol sym at the given
// cardinality exponent. The extreme regions extend to ±Inf.
func regionBounds(sym uint16, bits uint8) (lo, hi float64) {
	bp := Breakpoints(int(bits))
	if sym == 0 {
		lo = math.Inf(-1)
	} else {
		lo = bp[sym-1]
	}
	if int(sym) == len(bp) {
		hi = math.Inf(1)
	} else {
		hi = bp[sym]
	}
	return lo, hi
}

// Regions returns the word's packed breakpoint regions — interleaved
// [lo, hi] pairs, length 2·len(w.Symbols) — the precomputed per-node form
// consumed by the kernel MINDIST path (kernel.RegionLowerBound(s)2).
// Computing this once at node creation instead of per query per node
// removes the breakpoint-table walks from the traversal hot loop.
func (w Word) Regions() []float64 {
	out := make([]float64, 2*len(w.Symbols))
	for i := range w.Symbols {
		lo, hi := regionBounds(w.Symbols[i], w.Bits[i])
		out[2*i] = lo
		out[2*i+1] = hi
	}
	return out
}

// SegmentWidths returns the PAA segment widths of a length-n series split
// into l segments, as the float64 weight vector of the MINDIST kernels.
// kernel.RegionLowerBound2(qp, SegmentWidths(n, l), w.Regions()) equals
// MinDistPAA(qp, w, n)² bit-for-bit.
func SegmentWidths(n, l int) []float64 {
	out := make([]float64, l)
	for i := 0; i < l; i++ {
		lo, hi := paa.SegmentBounds(n, l, i)
		out[i] = float64(hi - lo)
	}
	return out
}

// MinDistPAA returns the iSAX lower-bounding distance (MINDIST) between a
// query's PAA representation and an iSAX word (typically an index node),
// for series of length n. It is zero when every PAA value falls inside the
// corresponding symbol region, and otherwise accumulates the squared gap to
// the nearest region boundary, weighted by segment width.
func MinDistPAA(qp []float64, w Word, n int) float64 {
	if len(qp) != len(w.Symbols) {
		panic(fmt.Sprintf("sax: PAA length %d != word length %d", len(qp), len(w.Symbols)))
	}
	l := len(qp)
	var acc float64
	for i := 0; i < l; i++ {
		lo, hi := regionBounds(w.Symbols[i], w.Bits[i])
		var gap float64
		if qp[i] < lo {
			gap = lo - qp[i]
		} else if qp[i] > hi {
			gap = qp[i] - hi
		}
		loIdx, hiIdx := paa.SegmentBounds(n, l, i)
		acc += float64(hiIdx-loIdx) * gap * gap
	}
	return math.Sqrt(acc)
}

// MinDistWords lower-bounds the distance between the original series of two
// iSAX words (used for node-to-node pruning): for each segment it measures
// the gap between the two symbol regions at the coarser common cardinality.
func MinDistWords(a, b Word, n int) float64 {
	if len(a.Symbols) != len(b.Symbols) {
		panic("sax: word length mismatch")
	}
	l := len(a.Symbols)
	var acc float64
	for i := 0; i < l; i++ {
		bits := a.Bits[i]
		if b.Bits[i] < bits {
			bits = b.Bits[i]
		}
		sa := a.Promote(i, bits)
		sb := b.Promote(i, bits)
		if sa == sb {
			continue
		}
		if sa > sb {
			sa, sb = sb, sa
		}
		// Gap between the top of region sa and the bottom of region sb.
		_, hiA := regionBounds(sa, bits)
		loB, _ := regionBounds(sb, bits)
		gap := loB - hiA
		if gap <= 0 {
			continue
		}
		loIdx, hiIdx := paa.SegmentBounds(n, l, i)
		acc += float64(hiIdx-loIdx) * gap * gap
	}
	return math.Sqrt(acc)
}
