package sax

import (
	"math"
	"math/rand"
	"testing"

	"hydra/internal/series"
	"hydra/internal/summaries/paa"
)

func randZSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	s.ZNormalize()
	return s
}

func TestNormInvCDF(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1}, // Phi(1)
		{0.9772498680518208, 2}, // Phi(2)
		{0.15865525393145705, -1},
	}
	for _, c := range cases {
		if got := normInvCDF(c.p); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("normInvCDF(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBreakpointsEquiprobable(t *testing.T) {
	// For 2 bits (cardinality 4) the breakpoints are the quartiles of N(0,1).
	bp := Breakpoints(2)
	want := []float64{-0.6744897501960817, 0, 0.6744897501960817}
	if len(bp) != 3 {
		t.Fatalf("len = %d, want 3", len(bp))
	}
	for i := range want {
		if math.Abs(bp[i]-want[i]) > 1e-8 {
			t.Errorf("bp[%d] = %v, want %v", i, bp[i], want[i])
		}
	}
}

func TestBreakpointsSorted(t *testing.T) {
	for b := 1; b <= MaxBits; b++ {
		bp := Breakpoints(b)
		if len(bp) != (1<<b)-1 {
			t.Fatalf("bits=%d: %d breakpoints, want %d", b, len(bp), (1<<b)-1)
		}
		for i := 1; i < len(bp); i++ {
			if bp[i] <= bp[i-1] {
				t.Fatalf("bits=%d: breakpoints not strictly increasing at %d", b, i)
			}
		}
	}
}

func TestSymbolOrdering(t *testing.T) {
	if Symbol(-10, 3) != 0 {
		t.Error("very low value should map to symbol 0")
	}
	if Symbol(10, 3) != 7 {
		t.Error("very high value should map to top symbol")
	}
	if Symbol(-0.01, 1) != 0 || Symbol(0.01, 1) != 1 {
		t.Error("1-bit symbols should split at 0")
	}
	// Symbols are monotone in the value.
	prev := uint16(0)
	for v := -3.0; v <= 3.0; v += 0.05 {
		sym := Symbol(v, 4)
		if sym < prev {
			t.Fatalf("symbol not monotone at v=%v", v)
		}
		prev = sym
	}
}

func TestFromSeriesAndPromote(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randZSeries(rng, 64)
	w := FromSeries(s, 8, 8)
	if len(w.Symbols) != 8 {
		t.Fatalf("word length %d", len(w.Symbols))
	}
	// Promoting to b bits equals re-quantising at b bits directly.
	p := paa.Transform(s, 8)
	for b := uint8(1); b <= 8; b++ {
		for i := range w.Symbols {
			want := Symbol(p[i], int(b))
			if got := w.Promote(i, b); got != want {
				t.Errorf("Promote(seg %d, %d bits) = %d, want %d", i, b, got, want)
			}
		}
	}
}

func TestPromoteFinerPanics(t *testing.T) {
	w := FromPAA([]float64{0.5}, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.Promote(0, 5)
}

func TestContains(t *testing.T) {
	w := FromPAA([]float64{0.5, -0.5}, 8)
	// A 1-bit prefix node: [symbol at 1 bit].
	node := Word{
		Symbols: []uint16{w.Promote(0, 1), w.Promote(1, 1)},
		Bits:    []uint8{1, 1},
	}
	if !node.Contains(w) {
		t.Error("prefix node should contain its own word")
	}
	// Flip a node symbol: no longer contains.
	node.Symbols[0] ^= 1
	if node.Contains(w) {
		t.Error("flipped node should not contain word")
	}
}

func TestKeyDistinct(t *testing.T) {
	a := Word{Symbols: []uint16{3, 1}, Bits: []uint8{2, 1}}
	b := Word{Symbols: []uint16{3, 1}, Bits: []uint8{2, 2}}
	if a.Key() == b.Key() {
		t.Error("words differing only in bits must have distinct keys")
	}
	if a.Key() != "3@2|1@1" {
		t.Errorf("Key = %q", a.Key())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromPAA([]float64{0.1, 0.2}, 4)
	b := a.Clone()
	b.Symbols[0] = 99
	if a.Symbols[0] == 99 {
		t.Error("clone shares storage")
	}
}

func TestMinDistPAALowerBounds(t *testing.T) {
	// MINDIST(q, sax(c)) <= dist(q, c) for all q, c — the core invariant.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		n := 16 + rng.Intn(240)
		l := 4 + rng.Intn(12)
		if l > n {
			l = n
		}
		bits := 1 + rng.Intn(MaxBits)
		q := randZSeries(rng, n)
		c := randZSeries(rng, n)
		w := FromSeries(c, l, bits)
		lb := MinDistPAA(paa.Transform(q, l), w, n)
		d := series.Dist(q, c)
		if lb > d+1e-6 {
			t.Fatalf("trial %d: MINDIST %v exceeds distance %v (n=%d l=%d bits=%d)", trial, lb, d, n, l, bits)
		}
	}
}

func TestMinDistPAACoarserIsLooser(t *testing.T) {
	// Lower bounds at coarser cardinalities must not exceed those at finer
	// cardinalities (they are weaker statements about the same region).
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 64
		l := 8
		q := randZSeries(rng, n)
		c := randZSeries(rng, n)
		qp := paa.Transform(q, l)
		fine := FromSeries(c, l, 8)
		coarse := Word{Symbols: make([]uint16, l), Bits: make([]uint8, l)}
		for i := 0; i < l; i++ {
			coarse.Symbols[i] = fine.Promote(i, 2)
			coarse.Bits[i] = 2
		}
		if MinDistPAA(qp, coarse, n) > MinDistPAA(qp, fine, n)+1e-9 {
			t.Fatalf("trial %d: coarser MINDIST is tighter than finer", trial)
		}
	}
}

func TestMinDistPAAZeroWhenInside(t *testing.T) {
	s := series.Series{0.1, 0.1, -0.2, -0.2}
	w := FromSeries(s, 2, 4)
	lb := MinDistPAA(paa.Transform(s, 2), w, 4)
	if lb != 0 {
		t.Errorf("MINDIST of a series against its own word = %v, want 0", lb)
	}
}

func TestMinDistWordsLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 200; trial++ {
		n := 64
		l := 8
		a := randZSeries(rng, n)
		b := randZSeries(rng, n)
		bitsA := 1 + rng.Intn(MaxBits)
		bitsB := 1 + rng.Intn(MaxBits)
		wa := FromSeries(a, l, bitsA)
		wb := FromSeries(b, l, bitsB)
		lb := MinDistWords(wa, wb, n)
		d := series.Dist(a, b)
		if lb > d+1e-6 {
			t.Fatalf("trial %d: word MINDIST %v exceeds distance %v", trial, lb, d)
		}
	}
}

func TestMinDistWordsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := FromSeries(randZSeries(rng, 32), 4, 6)
	b := FromSeries(randZSeries(rng, 32), 4, 3)
	if math.Abs(MinDistWords(a, b, 32)-MinDistWords(b, a, 32)) > 1e-12 {
		t.Error("MinDistWords not symmetric")
	}
}

func TestMinDistSameWordZero(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := FromSeries(randZSeries(rng, 32), 4, 5)
	if d := MinDistWords(w, w, 32); d != 0 {
		t.Errorf("distance of word to itself = %v", d)
	}
}
