package proj

import (
	"math"
	"math/rand"
	"testing"

	"hydra/internal/series"
)

func randSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func TestGaussianDims(t *testing.T) {
	g := NewGaussian(8, 64, 1)
	m, n := g.Dims()
	if m != 8 || n != 64 {
		t.Errorf("Dims = %d,%d", m, n)
	}
}

func TestGaussianDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randSeries(rng, 32)
	a := NewGaussian(4, 32, 7).Project(s)
	b := NewGaussian(4, 32, 7).Project(s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give identical projection")
		}
	}
}

func TestProjectionPreservesDistancesOnAverage(t *testing.T) {
	// E[||A(x-y)||^2 / m] = ||x-y||^2. Check the mean ratio over many pairs
	// is close to 1 with m = 32.
	rng := rand.New(rand.NewSource(5))
	m, n := 32, 128
	g := NewGaussian(m, n, 11)
	var ratioSum float64
	const trials = 200
	for i := 0; i < trials; i++ {
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		pd := SquaredDist(g.Project(a), g.Project(b)) / float64(m)
		td := series.SquaredDist(a, b)
		ratioSum += pd / td
	}
	mean := ratioSum / trials
	if math.Abs(mean-1) > 0.15 {
		t.Errorf("mean projected/true ratio = %v, want ~1", mean)
	}
}

func TestProjectionLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := NewGaussian(4, 16, 3)
	a := randSeries(rng, 16)
	b := randSeries(rng, 16)
	sum := make(series.Series, 16)
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	pa, pb, ps := g.Project(a), g.Project(b), g.Project(sum)
	for i := range ps {
		if math.Abs(ps[i]-(pa[i]+pb[i])) > 1e-4 {
			t.Fatalf("projection not linear at %d", i)
		}
	}
}

func TestProjectMismatchPanics(t *testing.T) {
	g := NewGaussian(2, 8, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g.Project(make(series.Series, 9))
}

func TestChiSquaredCDFKnownValues(t *testing.T) {
	// chi2 with k=2 is Exp(1/2): CDF(x) = 1 - exp(-x/2).
	for _, x := range []float64{0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquaredCDF(x, 2); math.Abs(got-want) > 1e-10 {
			t.Errorf("CDF(%v; 2) = %v, want %v", x, got, want)
		}
	}
	// Median of chi2 with k=1 is ~0.4549.
	if got := ChiSquaredCDF(0.4549364231195724, 1); math.Abs(got-0.5) > 1e-6 {
		t.Errorf("CDF(median; 1) = %v, want 0.5", got)
	}
	if ChiSquaredCDF(0, 4) != 0 {
		t.Error("CDF(0) should be 0")
	}
	if got := ChiSquaredCDF(1e6, 4); math.Abs(got-1) > 1e-9 {
		t.Errorf("CDF(huge) = %v, want 1", got)
	}
}

func TestChiSquaredCDFMonotone(t *testing.T) {
	for _, k := range []int{1, 2, 8, 16} {
		prev := -1.0
		for x := 0.1; x < 40; x += 0.5 {
			v := ChiSquaredCDF(x, k)
			if v < prev {
				t.Fatalf("k=%d: CDF not monotone at x=%v", k, x)
			}
			if v < 0 || v > 1 {
				t.Fatalf("k=%d: CDF out of [0,1] at x=%v: %v", k, x, v)
			}
			prev = v
		}
	}
}

func TestChiSquaredMatchesEmpirical(t *testing.T) {
	// Empirical check: the CDF of sum of k squared N(0,1) matches.
	rng := rand.New(rand.NewSource(21))
	k := 8
	const samples = 5000
	x := 7.0
	count := 0
	for i := 0; i < samples; i++ {
		var sum float64
		for j := 0; j < k; j++ {
			v := rng.NormFloat64()
			sum += v * v
		}
		if sum <= x {
			count++
		}
	}
	empirical := float64(count) / samples
	analytic := ChiSquaredCDF(x, k)
	if math.Abs(empirical-analytic) > 0.03 {
		t.Errorf("empirical %v vs analytic %v", empirical, analytic)
	}
}

func TestLineProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLine(16, 4)
	a := randSeries(rng, 16)
	// Line is linear and deterministic.
	v1 := l.Value(a)
	v2 := NewLine(16, 4).Value(a)
	if v1 != v2 {
		t.Error("line projection not deterministic")
	}
	scaled := a.Clone()
	for i := range scaled {
		scaled[i] *= 2
	}
	if math.Abs(l.Value(scaled)-2*v1) > 1e-4*(1+math.Abs(v1)) {
		t.Error("line projection not linear")
	}
}

func TestLineNearbyPointsProjectNearby(t *testing.T) {
	// |a·x - a·y| <= ||a|| ||x-y||; statistically, close points stay close.
	rng := rand.New(rand.NewSource(6))
	l := NewLine(64, 8)
	var closeGap, farGap float64
	for i := 0; i < 50; i++ {
		x := randSeries(rng, 64)
		near := x.Clone()
		for j := range near {
			near[j] += float32(rng.NormFloat64() * 0.01)
		}
		far := randSeries(rng, 64)
		closeGap += math.Abs(l.Value(x) - l.Value(near))
		farGap += math.Abs(l.Value(x) - l.Value(far))
	}
	if closeGap >= farGap {
		t.Errorf("close pairs should project closer: %v vs %v", closeGap, farGap)
	}
}
