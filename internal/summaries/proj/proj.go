// Package proj implements random projections: the Johnson–Lindenstrauss
// style Gaussian projection used by SRS to map series into a small
// m-dimensional space, and single-line 2-stable projections used by QALSH
// as hash functions.
//
// For a Gaussian random matrix A (entries N(0,1)), the projected squared
// distance ||A(x−y)||²/m concentrates around ||x−y||²; SRS exploits the
// exact chi-squared distribution of the ratio for its early-termination
// test.
package proj

import (
	"fmt"
	"math"
	"math/rand"

	"hydra/internal/series"
)

// Gaussian is an m×n random projection matrix with N(0,1) entries.
type Gaussian struct {
	rows [][]float64 // m rows of length n
}

// NewGaussian builds an m×n Gaussian projection with the given seed.
func NewGaussian(m, n int, seed int64) *Gaussian {
	if m <= 0 || n <= 0 {
		panic(fmt.Sprintf("proj: invalid projection size %dx%d", m, n))
	}
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, m)
	for i := range rows {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		rows[i] = row
	}
	return &Gaussian{rows: rows}
}

// Dims returns (m, n): output and input dimensionality.
func (g *Gaussian) Dims() (m, n int) { return len(g.rows), len(g.rows[0]) }

// Project maps a series into the m-dimensional projected space.
func (g *Gaussian) Project(s series.Series) []float64 {
	if len(s) != len(g.rows[0]) {
		panic(fmt.Sprintf("proj: series length %d != projection input %d", len(s), len(g.rows[0])))
	}
	out := make([]float64, len(g.rows))
	for i, row := range g.rows {
		var acc float64
		for j, v := range s {
			acc += row[j] * float64(v)
		}
		out[i] = acc
	}
	return out
}

// SquaredDist returns the squared Euclidean distance between two projected
// vectors.
func SquaredDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("proj: projected length mismatch %d vs %d", len(a), len(b)))
	}
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}

// ChiSquaredCDF returns P(X <= x) for X ~ chi-squared with k degrees of
// freedom, evaluated via the regularised lower incomplete gamma function.
// SRS uses this to convert a projected distance into a confidence that the
// true distance is below a threshold.
func ChiSquaredCDF(x float64, k int) float64 {
	if x <= 0 {
		return 0
	}
	return regularizedGammaP(float64(k)/2, x/2)
}

// regularizedGammaP computes P(a,x) = γ(a,x)/Γ(a) using the series
// expansion for x < a+1 and the continued fraction otherwise (Numerical
// Recipes style, stdlib-only).
func regularizedGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		panic("proj: invalid arguments to regularizedGammaP")
	}
	if x == 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1.0 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x), then P = 1-Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}

// Line is a single 2-stable (Gaussian) projection a·x used by QALSH: the
// projection of the data onto one random direction. Points close in the
// original space project to nearby values with high probability.
type Line struct {
	dir []float64
}

// NewLine builds a random projection line for dimension n.
func NewLine(n int, seed int64) *Line {
	rng := rand.New(rand.NewSource(seed))
	dir := make([]float64, n)
	for i := range dir {
		dir[i] = rng.NormFloat64()
	}
	return &Line{dir: dir}
}

// Value projects s onto the line.
func (l *Line) Value(s series.Series) float64 {
	if len(s) != len(l.dir) {
		panic(fmt.Sprintf("proj: series length %d != line dimension %d", len(s), len(l.dir)))
	}
	var acc float64
	for i, v := range s {
		acc += l.dir[i] * float64(v)
	}
	return acc
}
